package main

import (
	"bytes"
	"strings"
	"testing"
)

// cli runs the command in-process and captures both streams.
func cli(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunSmallStream(t *testing.T) {
	code, out, errs := cli(t, "-requests", "30000", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	for _, want := range []string{"stream ", "arrivals", "identify latency", "p999"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The deterministic portion of the output (everything except wall-clock
// and latency lines) must be identical across repeats and worker counts.
func deterministicLines(out string) string {
	var keep []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "wall") || strings.Contains(l, "identify latency") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	_, a, _ := cli(t, "-requests", "25000", "-workers", "1")
	_, b, _ := cli(t, "-requests", "25000", "-workers", "4")
	if da, db := deterministicLines(a), deterministicLines(b); da != db {
		t.Fatalf("workers=1 and workers=4 diverge:\n%s\n---\n%s", da, db)
	}
}

func TestRunSpecOverride(t *testing.T) {
	spec := "rate=500000;mix=webserver:1,tpcc:1;period=20ms:0.2;burst=5ms+5ms*3;drift=0.02"
	code, out, errs := cli(t, "-requests", "20000", "-seed", "7", "-spec", spec)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	// The printed spec is the parsed config re-rendered, with -seed
	// inherited because the spec carries none.
	if !strings.Contains(out, "rate=500000") || !strings.Contains(out, "seed=7") {
		t.Errorf("spec not applied or seed not inherited:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code, _, _ := cli(t, "-requests", "0"); code != 2 {
		t.Errorf("-requests 0 accepted (exit %d)", code)
	}
	if code, _, errs := cli(t, "-spec", "rate=nope"); code != 2 {
		t.Errorf("bad spec accepted (exit %d, stderr %q)", code, errs)
	}
	if code, _, errs := cli(t, "-spec", "rate=1000"); code != 2 {
		t.Errorf("spec without mix accepted (exit %d, stderr %q)", code, errs)
	}
}

func TestRunTrace(t *testing.T) {
	code, out, errs := cli(t, "-requests", "15000", "-trace")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	if !strings.Contains(out, "serve.") {
		t.Errorf("-trace output missing serve counters:\n%s", out)
	}
}

// Fleet mode: -topology shards the stream across a simulated fleet and the
// deterministic portion of its output is stable across worker counts.
func TestRunFleetMode(t *testing.T) {
	args := []string{"-topology", "pkg=2,2/pkg=4:1.15:8", "-policy", "ease", "-requests", "15000", "-seed", "4"}
	code, out, errs := cli(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	for _, want := range []string{"fleet  ", "contention-easing", "node0", "node1", "fleet CPI", "merges"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q:\n%s", want, out)
		}
	}
	_, a, _ := cli(t, append(args, "-workers", "1")...)
	_, b, _ := cli(t, append(args, "-workers", "4")...)
	if da, db := deterministicLines(a), deterministicLines(b); da != db {
		t.Fatalf("fleet workers=1 and workers=4 diverge:\n%s\n---\n%s", da, db)
	}
}

func TestRunFleetRejectsBadTopologyAndPolicy(t *testing.T) {
	if code, _, errs := cli(t, "-topology", "pkg=0"); code != 2 || !strings.Contains(errs, "Cores") {
		t.Fatalf("bad fleet spec: exit %d, stderr %s", code, errs)
	}
	if code, _, errs := cli(t, "-topology", "pkg=2,2", "-policy", "fifo"); code != 2 || !strings.Contains(errs, "fifo") {
		t.Fatalf("bad policy: exit %d, stderr %s", code, errs)
	}
}

// A -spec in fleet mode overrides the arrival stream and inherits -seed.
func TestRunFleetSpecOverride(t *testing.T) {
	code, out, errs := cli(t, "-topology", "pkg=2,2", "-requests", "4000",
		"-spec", "rate=6000;mix=webserver:1", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs)
	}
	if !strings.Contains(out, "rate=6000;mix=webserver:1;seed=9") {
		t.Fatalf("spec override not applied:\n%s", out)
	}
}
