// Command rbvserve runs the always-on service mode (package serve): a
// continuous deterministic request stream through the online
// identification / compaction / anomaly pipeline, with admission control
// and backpressure.
//
// Usage:
//
//	rbvserve [-seed N] [-requests N] [-spec STREAM] [-workers N] [-trace]
//	rbvserve -topology FLEET [-policy NAME] [-seed N] [-requests N] [-spec STREAM] [-workers N]
//
// The run processes -requests arrivals (whole ticks, then a drain), prints
// the engine's deterministic result table, and appends the identify-path
// latency profile (p50/p99/p999 wall nanoseconds per ObserveScored call —
// the one output that is *not* deterministic, since it measures the real
// clock). -spec overrides the arrival process using the compact stream
// syntax (see workload.ParseStream):
//
//	rate=800000;mix=webserver:4,tpcc:2,rubis:2;period=50ms:0.3;burst=100ms+40ms*2.5;drift=0.01;seed=1
//
// A -spec without its own seed=N inherits -seed, so sweeping seeds does not
// require editing the spec. -trace prints the engine's counter summary via
// an attached obs collector (results are identical either way).
//
// -topology switches to fleet mode (serve.Fleet): the stream is sharded
// across a fleet of simulated machines given as "/"-separated topology
// specs (see machine.ParseFleet), e.g.
//
//	rbvserve -topology "pkg=2,2/pkg=4:0.85/pkg=4:1.15:8,4:1.15:8" -policy ease
//
// -policy picks the placement policy from the serve package's registry by
// canonical name or alias: "round-robin" ("rr", the default), "contention-
// easing" ("ease"), or "scale-out" ("scale", reactive node activation from
// the queued-high saturation signal). Fleet results are bit-identical
// across repeats and -workers settings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flag and spec errors exit 2, engine
// failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rbvserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "master random seed (runs are reproducible per seed)")
	requests := fs.Int("requests", 1_000_000, "number of arrivals to process before draining")
	spec := fs.String("spec", "", "stream spec overriding the default arrival process (see workload.ParseStream)")
	workers := fs.Int("workers", 0, "goroutines driving the shard phase (0 = GOMAXPROCS; never changes results)")
	traceOut := fs.Bool("trace", false, "print the observability counter summary after the run")
	topoSpec := fs.String("topology", "", "fleet mode: \"/\"-separated node topologies (see machine.ParseFleet)")
	policy := fs.String("policy", "rr", "fleet placement policy: "+strings.Join(serve.FleetPolicyNames(), ", ")+" (aliases: rr, ease, scale)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *requests <= 0 {
		fmt.Fprintf(stderr, "rbvserve: -requests must be positive, got %d\n", *requests)
		return 2
	}
	if *topoSpec != "" {
		return runFleet(*topoSpec, *policy, *seed, *requests, *spec, *workers, stdout, stderr)
	}

	cfg := serve.DefaultConfig(*seed)
	cfg.Workers = *workers
	if *spec != "" {
		sc, err := workload.ParseStream(*spec)
		if err != nil {
			fmt.Fprintf(stderr, "rbvserve: %v\n", err)
			return 2
		}
		if !strings.Contains(*spec, "seed=") {
			sc.Seed = *seed
		}
		cfg.Stream = sc
	}

	var col *obs.Collector
	if *traceOut {
		col = obs.New("rbvserve")
		cfg.Obs = col
	}

	e, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rbvserve: %v\n", err)
		return 1
	}
	defer e.Close()

	start := time.Now()
	e.Process(*requests)
	e.Drain()
	wall := time.Since(start)
	res := e.Result()

	fmt.Fprintf(stdout, "stream %q\n", cfg.Stream.String())
	fmt.Fprint(stdout, res.String())
	if wall > 0 {
		fmt.Fprintf(stdout, "  wall                   %.3fs (%.2fM req/s ingest)\n",
			wall.Seconds(), float64(res.Arrivals)/wall.Seconds()/1e6)
	}
	h := e.Histogram()
	fmt.Fprintf(stdout, "  identify latency       p50 %.0fns  p99 %.0fns  p999 %.0fns  (%d calls, max %dns)\n",
		h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Count(), h.Max())

	if col != nil {
		fmt.Fprint(stdout, col.Report().Summary())
	}
	return 0
}

// runFleet is the -topology path: the stream sharded across a simulated
// fleet under the selected placement policy.
func runFleet(topoSpec, policy string, seed int64, requests int, spec string, workers int, stdout, stderr io.Writer) int {
	nodes, err := machine.ParseFleet(topoSpec)
	if err != nil {
		fmt.Fprintf(stderr, "rbvserve: %v\n", err)
		return 2
	}
	cfg := serve.DefaultFleetConfig(seed)
	cfg.Nodes = nodes
	cfg.Workers = workers
	pol, err := serve.ParseFleetPolicy(policy)
	if err != nil {
		fmt.Fprintf(stderr, "rbvserve: %v\n", err)
		return 2
	}
	cfg.Policy = pol
	if spec != "" {
		sc, err := workload.ParseStream(spec)
		if err != nil {
			fmt.Fprintf(stderr, "rbvserve: %v\n", err)
			return 2
		}
		if !strings.Contains(spec, "seed=") {
			sc.Seed = seed
		}
		cfg.Stream = sc
	}
	f, err := serve.NewFleet(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rbvserve: %v\n", err)
		return 1
	}
	defer f.Close()

	start := time.Now()
	f.Process(requests)
	f.Drain()
	wall := time.Since(start)
	res := f.Result()

	fmt.Fprintf(stdout, "stream %q\n", cfg.Stream.String())
	fmt.Fprintf(stdout, "fleet  %q\n", machine.FleetString(cfg.Nodes))
	fmt.Fprint(stdout, res.String())
	if wall > 0 {
		fmt.Fprintf(stdout, "  wall %.3fs (%.2fM req/s ingest)\n",
			wall.Seconds(), float64(res.Arrivals)/wall.Seconds()/1e6)
	}
	return 0
}
