package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/verify"
)

func TestSelectExperimentsDefaultIsEverything(t *testing.T) {
	sel, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 21 || sel[0].Name() != "fig1" || sel[len(sel)-1].Name() != "schedlab" {
		t.Fatalf("default selection wrong: %d experiments", len(sel))
	}
}

func TestSelectExperimentsSubsetKeepsPaperOrder(t *testing.T) {
	sel, err := selectExperiments("fig7, fig1,table1")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range sel {
		names = append(names, e.Name())
	}
	if got := strings.Join(names, ","); got != "fig1,table1,fig7" {
		t.Fatalf("selection = %s, want paper order fig1,table1,fig7", got)
	}
}

// Unknown names must be rejected with the full list of valid names — the
// error the CLI prints before exiting non-zero.
func TestSelectExperimentsRejectsUnknown(t *testing.T) {
	_, err := selectExperiments("fig1,fig99,bogus")
	if err == nil {
		t.Fatal("unknown names accepted")
	}
	msg := err.Error()
	for _, want := range []string{"fig99", "bogus", "valid:", "fig1", "ablations"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// cli runs the command in-process and captures both streams.
func cli(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunUnknownExperimentExitsTwo(t *testing.T) {
	code, _, stderr := cli(t, "-run", "fig99")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown experiments") || !strings.Contains(stderr, "valid:") {
		t.Fatalf("stderr missing the valid-name list: %q", stderr)
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := cli(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunTracePrintsSummary(t *testing.T) {
	code, stdout, stderr := cli(t, "-run", "faultanomaly", "-scale", "0.05", "-trace")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "==== faultanomaly") {
		t.Fatalf("experiment table missing from stdout: %q", stdout)
	}
	if !strings.Contains(stdout, "rbvrepro") || !strings.Contains(stdout, "faultanomaly") {
		t.Fatalf("span summary missing from stdout: %q", stdout)
	}
}

// -json - moves the human-readable tables to stderr and leaves stdout a
// clean JSON stream.
func TestRunJSONToStdout(t *testing.T) {
	code, stdout, stderr := cli(t, "-run", "faultanomaly", "-scale", "0.05", "-json", "-")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not clean JSON: %v\n%q", err, stdout)
	}
	if !strings.Contains(stderr, "==== faultanomaly") {
		t.Fatalf("tables did not move to stderr: %q", stderr)
	}
}

func TestRunJSONToFileWithSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rep.json")
	code, _, stderr := cli(t, "-run", "faultanomaly", "-scale", "0.05", "-json", path, "-obs-sample", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
}

func TestRunVerifyAndGoldenAreExclusive(t *testing.T) {
	code, _, stderr := cli(t, "-verify", "-golden")
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit %d stderr %q, want 2 + mutually exclusive", code, stderr)
	}
}

func TestRunGoldenCannotBeNarrowed(t *testing.T) {
	code, _, stderr := cli(t, "-golden", "-run", "fig1", "-golden-dir", t.TempDir())
	if code != 2 || !strings.Contains(stderr, "cannot be narrowed") {
		t.Fatalf("exit %d stderr %q, want 2 + narrowing rejection", code, stderr)
	}
}

// TestRunVerifyAgainstEmptyCorpus: with no committed corpus every cell is
// MISS and the command exits 1 — the state a new clone would see if the
// corpus were deleted. The grid is narrowed with -run to keep the test
// cheap; narrowing also suppresses the stale-entry scan.
func TestRunVerifyAgainstEmptyCorpusFails(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := cli(t, "-verify", "-run", "faultanomaly", "-golden-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d (stderr %s), want 1 for an empty corpus", code, stderr)
	}
	if !strings.Contains(stdout, "MISS") || !strings.Contains(stdout, "-golden") {
		t.Fatalf("report should mark cells MISS and point at -golden: %q", stdout)
	}
}

// TestRunVerifyNarrowedRoundTrip exercises the CLI verify path end to end
// against a corpus generated through the engine, with the obs layer
// attached (-trace prints per-cell spans).
func TestRunVerifyNarrowedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cells := []verify.Cell{
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.05},
		{Experiment: "faultanomaly", Seed: 2, Scale: 0.05},
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.1},
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.05, Procs: 1},
		{Experiment: "faultanomaly", Seed: 1, Scale: 0.05, Procs: 4},
	}
	if _, err := verify.Sweep(cells, verify.Options{Dir: dir, Update: true}); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := cli(t, "-verify", "-run", "faultanomaly", "-golden-dir", dir, "-trace")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "cells ok") || !strings.Contains(stdout, "cell") {
		t.Fatalf("verify summary or span trace missing: %q", stdout)
	}
}

// -topology reruns the multi-core experiments on the given machine; bad
// specs exit 2 and the verification modes refuse the flag (fingerprints
// are defined on the paper's default machine).
func TestRunTopologyFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-run", "fig1", "-scale", "0.02", "-topology", "cores=8;per=4"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Fatalf("fig1 output missing:\n%s", out.String())
	}
	errBuf.Reset()
	if code := run([]string{"-topology", "pkg="}, &out, &errBuf); code != 2 {
		t.Fatalf("bad topology should exit 2, got %d", code)
	}
	errBuf.Reset()
	if code := run([]string{"-verify", "-topology", "cores=8"}, &out, &errBuf); code != 2 ||
		!strings.Contains(errBuf.String(), "-topology") {
		t.Fatalf("verify+topology should exit 2 with an explanation, got %d: %s", code, errBuf.String())
	}
}
