package main

import (
	"strings"
	"testing"
)

func TestSelectExperimentsDefaultIsEverything(t *testing.T) {
	sel, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 17 || sel[0].Name() != "fig1" || sel[len(sel)-1].Name() != "faultanomaly" {
		t.Fatalf("default selection wrong: %d experiments", len(sel))
	}
}

func TestSelectExperimentsSubsetKeepsPaperOrder(t *testing.T) {
	sel, err := selectExperiments("fig7, fig1,table1")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range sel {
		names = append(names, e.Name())
	}
	if got := strings.Join(names, ","); got != "fig1,table1,fig7" {
		t.Fatalf("selection = %s, want paper order fig1,table1,fig7", got)
	}
}

// Unknown names must be rejected with the full list of valid names — the
// error the CLI prints before exiting non-zero.
func TestSelectExperimentsRejectsUnknown(t *testing.T) {
	_, err := selectExperiments("fig1,fig99,bogus")
	if err == nil {
		t.Fatal("unknown names accepted")
	}
	msg := err.Error()
	for _, want := range []string{"fig99", "bogus", "valid:", "fig1", "ablations"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
