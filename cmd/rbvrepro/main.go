// Command rbvrepro regenerates the tables and figures of "Request Behavior
// Variations" (Shen, ASPLOS 2010) on the simulated substrate.
//
// Usage:
//
//	rbvrepro [-seed N] [-scale F] [-run LIST]
//
// where LIST is a comma-separated subset of
// table1,table2,fig1,...,fig13 (default: everything, in paper order).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// experiment is one runnable unit: every table and figure of the paper.
type experiment struct {
	name string
	run  func(experiments.Config) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](fn func(experiments.Config) (T, error)) func(experiments.Config) (fmt.Stringer, error) {
	return func(cfg experiments.Config) (fmt.Stringer, error) {
		r, err := fn(cfg)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

var all = []experiment{
	{"fig1", wrap(experiments.Figure1)},
	{"fig2", wrap(experiments.Figure2)},
	{"table1", wrap(experiments.Table1)},
	{"fig3", wrap(experiments.Figure3)},
	{"fig4", wrap(experiments.Figure4)},
	{"fig5", wrap(experiments.Figure5)},
	{"table2", wrap(experiments.Table2)},
	{"fig6", wrap(experiments.Figure6)},
	{"fig7", wrap(experiments.Figure7)},
	{"fig8", wrap(experiments.Figure8)},
	{"fig9", wrap(experiments.Figure9)},
	{"fig10", wrap(experiments.Figure10)},
	{"fig11", wrap(experiments.Figure11)},
	{"fig12", wrap(experiments.Figure12)},
	{"fig13", wrap(experiments.Figure13)},
	{"ablations", wrap(experiments.Ablations)},
}

func main() {
	seed := flag.Int64("seed", 1, "master random seed (runs are reproducible per seed)")
	scale := flag.Float64("scale", 1.0, "request-count scale factor (1.0 = full evaluation)")
	runList := flag.String("run", "", "comma-separated experiments to run (default all): fig1..fig13,table1,table2,ablations")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}

	selected := all
	if *runList != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(name)] = true
		}
		selected = nil
		for _, e := range all {
			if want[e.name] {
				selected = append(selected, e)
				delete(want, e.name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for name := range want {
				unknown = append(unknown, name)
			}
			fmt.Fprintf(os.Stderr, "rbvrepro: unknown experiments: %s\n", strings.Join(unknown, ","))
			os.Exit(2)
		}
	}

	for _, e := range selected {
		start := time.Now()
		result, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbvrepro: %s failed: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n\n%s\n", e.name, time.Since(start).Seconds(), result)
	}
}
