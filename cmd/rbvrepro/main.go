// Command rbvrepro regenerates the tables and figures of "Request Behavior
// Variations" (Shen, ASPLOS 2010) on the simulated substrate.
//
// Usage:
//
//	rbvrepro [-seed N] [-scale F] [-run LIST] [-json FILE] [-trace] [-obs-sample N]
//
// where LIST is a comma-separated subset of the experiment registry
// (default: everything, in paper order; see experiments.Registry). -json
// writes an observability run report ("-" = stdout) and -trace prints the
// human-readable span/counter summary; either flag attaches a collector to
// every run. Collectors never change results (see package obs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 1, "master random seed (runs are reproducible per seed)")
	scale := flag.Float64("scale", 1.0, "request-count scale factor (1.0 = full evaluation)")
	runList := flag.String("run", "", "comma-separated experiments to run (default all, in paper order)")
	jsonOut := flag.String("json", "", "write the observability run report as JSON to this file (\"-\" = stdout)")
	traceOut := flag.Bool("trace", false, "print the observability span/counter summary after the runs")
	obsSample := flag.Uint64("obs-sample", 1, "record 1 in N observations of the highest-frequency span series")
	flag.Parse()

	selected, err := selectExperiments(*runList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbvrepro: %v\n", err)
		os.Exit(2)
	}

	var col *obs.Collector
	if *jsonOut != "" || *traceOut {
		col = obs.New("rbvrepro")
		col.SetSampleEvery(*obsSample)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Obs: col}

	// With the JSON report on stdout, the human-readable tables move to
	// stderr so the report stays a clean machine-parseable stream.
	text := os.Stdout
	if *jsonOut == "-" {
		text = os.Stderr
	}
	for _, e := range selected {
		start := time.Now()
		result, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbvrepro: %s failed: %v\n", e.Name(), err)
			os.Exit(1)
		}
		fmt.Fprintf(text, "==== %s (%.1fs) ====\n\n%s\n", e.Name(), time.Since(start).Seconds(), result)
	}

	if col == nil {
		return
	}
	rep := col.Report()
	if *traceOut {
		fmt.Fprint(text, rep.Summary())
	}
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rbvrepro: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintf(os.Stderr, "rbvrepro: write report: %v\n", err)
			os.Exit(1)
		}
	}
}

// selectExperiments resolves a comma-separated name list against the
// registry, preserving paper order; an empty list selects everything.
// Unknown names are an error carrying the full set of valid names.
func selectExperiments(list string) ([]experiments.Experiment, error) {
	reg := experiments.Registry()
	if list == "" {
		return reg, nil
	}
	want := map[string]bool{}
	var order []string
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" && !want[name] {
			want[name] = true
			order = append(order, name)
		}
	}
	var selected []experiments.Experiment
	for _, e := range reg {
		if want[e.Name()] {
			selected = append(selected, e)
			delete(want, e.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for _, name := range order {
			if want[name] {
				unknown = append(unknown, name)
			}
		}
		return nil, fmt.Errorf("unknown experiments: %s (valid: %s)",
			strings.Join(unknown, ","), strings.Join(experiments.Names(), ","))
	}
	return selected, nil
}
