// Command rbvrepro regenerates the tables and figures of "Request Behavior
// Variations" (Shen, ASPLOS 2010) on the simulated substrate.
//
// Usage:
//
//	rbvrepro [-seed N] [-scale F] [-run LIST] [-topology SPEC] [-json FILE] [-trace] [-obs-sample N]
//	rbvrepro -verify [-grid smoke|full] [-run LIST] [-golden-dir DIR] [-verify-workers N]
//	rbvrepro -golden [-grid smoke|full] [-golden-dir DIR] [-verify-workers N]
//
// where LIST is a comma-separated subset of the experiment registry
// (default: everything, in paper order; see experiments.Registry). -json
// writes an observability run report ("-" = stdout) and -trace prints the
// human-readable span/counter summary; either flag attaches a collector to
// every run. Collectors never change results (see package obs).
//
// -topology overrides the simulated machine of every multi-core run using
// the compact topology syntax (see machine.ParseTopology), e.g.
// "pkg=2:0.8,4:1.2:8;clock=2.5" or "cores=16;per=4". Runs that pin their
// own core count (the solo baselines) keep it. Verification modes reject
// the flag: golden fingerprints are defined on the paper's machine.
//
// -verify runs the deterministic verification sweep (package verify): the
// selected experiment grid is re-executed in parallel and checked against
// the committed golden-fingerprint corpus, and any divergence is reported
// with the experiment name and first divergent field. -grid picks the tier:
// "smoke" (the default seed x scale x GOMAXPROCS spread, corpus
// testdata/golden) or "full" (every experiment at seed 1, scale 1 — the
// README's quoted configuration, corpus testdata/golden-full). -golden
// re-runs the selected grid and regenerates its corpus — the step after an
// intentional output change (see README "Verification").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flag errors and unknown experiment
// names exit 2, run and verification failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rbvrepro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "master random seed (runs are reproducible per seed)")
	scale := fs.Float64("scale", 1.0, "request-count scale factor (1.0 = full evaluation)")
	runList := fs.String("run", "", "comma-separated experiments to run (default all, in paper order)")
	topoSpec := fs.String("topology", "", "machine topology for multi-core runs (see machine.ParseTopology)")
	jsonOut := fs.String("json", "", "write the observability run report as JSON to this file (\"-\" = stdout)")
	traceOut := fs.Bool("trace", false, "print the observability span/counter summary after the runs")
	obsSample := fs.Uint64("obs-sample", 1, "record 1 in N observations of the highest-frequency span series")
	verifyMode := fs.Bool("verify", false, "check the experiment grid against the golden-fingerprint corpus")
	goldenMode := fs.Bool("golden", false, "regenerate the golden-fingerprint corpus from the current code")
	goldenDir := fs.String("golden-dir", "", "golden corpus directory (default per -grid tier)")
	gridTier := fs.String("grid", "smoke", "verification grid tier: smoke (seed x scale x GOMAXPROCS spread) or full (every experiment at seed 1, scale 1)")
	verifyWorkers := fs.Int("verify-workers", 0, "concurrent verification cells (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var col *obs.Collector
	if *jsonOut != "" || *traceOut {
		col = obs.New("rbvrepro")
		col.SetSampleEvery(*obsSample)
	}

	// With the JSON report on stdout, the human-readable tables move to
	// stderr so the report stays a clean machine-parseable stream.
	text := stdout
	if *jsonOut == "-" {
		text = stderr
	}

	if *verifyMode || *goldenMode {
		if *verifyMode && *goldenMode {
			fmt.Fprintln(stderr, "rbvrepro: -verify and -golden are mutually exclusive")
			return 2
		}
		if *topoSpec != "" {
			fmt.Fprintln(stderr, "rbvrepro: -topology cannot be combined with -verify/-golden (fingerprints are defined on the default machine)")
			return 2
		}
		// Each grid tier owns its corpus directory, so the smoke and full
		// corpora regenerate independently.
		var grid []verify.Cell
		switch *gridTier {
		case "smoke":
			grid = verify.DefaultGrid()
			if *goldenDir == "" {
				*goldenDir = "internal/verify/testdata/golden"
			}
		case "full":
			grid = verify.FullGrid()
			if *goldenDir == "" {
				*goldenDir = "internal/verify/testdata/golden-full"
			}
		default:
			fmt.Fprintf(stderr, "rbvrepro: unknown -grid tier %q (valid: smoke, full)\n", *gridTier)
			return 2
		}
		partial := false
		if *runList != "" {
			// -run narrows the verification grid the same way it narrows a
			// normal run. A narrowed -golden is forbidden: regeneration
			// owns the corpus directory and would delete every other
			// experiment's golden files.
			if *goldenMode {
				fmt.Fprintln(stderr, "rbvrepro: -golden regenerates the full corpus; it cannot be narrowed with -run")
				return 2
			}
			selected, err := selectExperiments(*runList)
			if err != nil {
				fmt.Fprintf(stderr, "rbvrepro: %v\n", err)
				return 2
			}
			want := map[string]bool{}
			for _, e := range selected {
				want[e.Name()] = true
			}
			var narrowed []verify.Cell
			for _, c := range grid {
				if want[c.Experiment] {
					narrowed = append(narrowed, c)
				}
			}
			grid, partial = narrowed, true
		}
		rep, err := verify.Sweep(grid, verify.Options{
			Dir:     *goldenDir,
			Workers: *verifyWorkers,
			Obs:     col,
			Update:  *goldenMode,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rbvrepro: verify: %v\n", err)
			return 1
		}
		if partial {
			// Entries outside the narrowed grid are expected, not stale.
			rep.Stale = nil
		}
		fmt.Fprint(text, rep)
		if code := writeObs(col, *jsonOut, *traceOut, text, stdout, stderr); code != 0 {
			return code
		}
		if !rep.OK() {
			return 1
		}
		return 0
	}

	selected, err := selectExperiments(*runList)
	if err != nil {
		fmt.Fprintf(stderr, "rbvrepro: %v\n", err)
		return 2
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Obs: col}
	if *topoSpec != "" {
		topo, err := machine.ParseTopology(*topoSpec)
		if err != nil {
			fmt.Fprintf(stderr, "rbvrepro: %v\n", err)
			return 2
		}
		cfg.Topology = &topo
	}
	for _, e := range selected {
		start := time.Now()
		result, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "rbvrepro: %s failed: %v\n", e.Name(), err)
			return 1
		}
		fmt.Fprintf(text, "==== %s (%.1fs) ====\n\n%s\n", e.Name(), time.Since(start).Seconds(), result)
	}
	return writeObs(col, *jsonOut, *traceOut, text, stdout, stderr)
}

// writeObs emits the collector's report per the -trace/-json flags (no-op
// for a nil collector); returns a non-zero exit code on write failure.
func writeObs(col *obs.Collector, jsonOut string, traceOut bool, text, stdout, stderr io.Writer) int {
	if col == nil {
		return 0
	}
	rep := col.Report()
	if traceOut {
		fmt.Fprint(text, rep.Summary())
	}
	if jsonOut != "" {
		w := stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				fmt.Fprintf(stderr, "rbvrepro: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "rbvrepro: write report: %v\n", err)
			return 1
		}
	}
	return 0
}

// selectExperiments resolves a comma-separated name list against the
// registry, preserving paper order; an empty list selects everything.
// Unknown names are an error carrying the full set of valid names.
func selectExperiments(list string) ([]experiments.Experiment, error) {
	reg := experiments.Registry()
	if list == "" {
		return reg, nil
	}
	want := map[string]bool{}
	var order []string
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" && !want[name] {
			want[name] = true
			order = append(order, name)
		}
	}
	var selected []experiments.Experiment
	for _, e := range reg {
		if want[e.Name()] {
			selected = append(selected, e)
			delete(want, e.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for _, name := range order {
			if want[name] {
				unknown = append(unknown, name)
			}
		}
		return nil, fmt.Errorf("unknown experiments: %s (valid: %s)",
			strings.Join(unknown, ","), strings.Join(experiments.Names(), ","))
	}
	return selected, nil
}
