package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/verify"
)

// writeFinding drops a FINDINGS.md under dir/<slug>/.
func writeFinding(t *testing.T, dir, slug, content string) {
	t.Helper()
	d := filepath.Join(dir, slug)
	if err := os.MkdirAll(d, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d, "FINDINGS.md"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func finding(pin string) string {
	return "# t\n\n## Claim\n\nc\n\n## Seeds\n\ns\n\n## Result\n\nr\n\n## Pinned cell\n\n" + pin + "\n"
}

func TestRunValidatesStructure(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder

	// No findings at all: configuration error.
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 2 {
		t.Fatalf("empty dir: exit %d, want 2", code)
	}

	// Missing mandatory section.
	writeFinding(t, dir, "no-result", "# t\n\n## Claim\n\nc\n\n## Seeds\n\ns\n\n## Pinned cell\n\n- experiment: fig6\n- seed: 1\n- scale: 0.1\n- fingerprint: x\n")
	errOut.Reset()
	if code := run([]string{"-dir", dir, "-run=false"}, &out, &errOut); code != 1 {
		t.Fatalf("missing section: exit %d, want 1\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no-result") || !strings.Contains(errOut.String(), "Result") {
		t.Fatalf("error must name the file and section:\n%s", errOut.String())
	}
	if err := os.RemoveAll(filepath.Join(dir, "no-result")); err != nil {
		t.Fatal(err)
	}

	// Unknown pinned experiment.
	writeFinding(t, dir, "bad-exp", finding("- experiment: fig99\n- seed: 1\n- scale: 0.1\n- fingerprint: x"))
	errOut.Reset()
	if code := run([]string{"-dir", dir, "-run=false"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown experiment: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "fig99") {
		t.Fatalf("error must name the experiment:\n%s", errOut.String())
	}
	if err := os.RemoveAll(filepath.Join(dir, "bad-exp")); err != nil {
		t.Fatal(err)
	}

	// Structurally complete: -run=false passes without reproducing.
	writeFinding(t, dir, "ok", finding("- experiment: fig6\n- seed: 1\n- scale: 0.1\n- fingerprint: notchecked"))
	out.Reset()
	if code := run([]string{"-dir", dir, "-run=false"}, &out, &errOut); code != 0 {
		t.Fatalf("valid structure: exit %d\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1/1 findings") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

// TestRunReproducesPinnedCell exercises the re-run path end to end against
// the cheapest registry experiment: a finding pinning the live fingerprint
// passes, one pinning a stale fingerprint fails naming both hashes.
func TestRunReproducesPinnedCell(t *testing.T) {
	e, ok := experiments.Lookup("fig6")
	if !ok {
		t.Fatal("fig6 missing from registry")
	}
	res, err := e.Run(experiments.Config{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lines, err := verify.Canonicalize(res)
	if err != nil {
		t.Fatal(err)
	}
	fp := verify.FingerprintLines(lines)

	dir := t.TempDir()
	writeFinding(t, dir, "live", finding("- experiment: fig6\n- seed: 1\n- scale: 0.1\n- fingerprint: "+fp))
	var out, errOut strings.Builder
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("live fingerprint: exit %d\n%s", code, errOut.String())
	}

	writeFinding(t, dir, "stale", finding("- experiment: fig6\n- seed: 1\n- scale: 0.1\n- fingerprint: sha256:deadbeef"))
	errOut.Reset()
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("stale fingerprint: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "deadbeef") || !strings.Contains(errOut.String(), fp) {
		t.Fatalf("stale error must show both fingerprints:\n%s", errOut.String())
	}
}

// TestRepoFindingsAreStructurallyValid keeps the committed lab honest at
// unit-test speed (the full reproduction runs under `make hypotheses`).
func TestRepoFindingsAreStructurallyValid(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dir", "../../hypotheses", "-run=false"}, &out, &errOut); code != 0 {
		t.Fatalf("committed findings invalid (exit %d):\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "2/2") {
		t.Fatalf("expected 2 committed findings:\n%s", out.String())
	}
}

// TestRunRejectsMalformedPins covers the pinned-cell parse errors: bad
// numeric fields and each missing mandatory field fail with a message
// naming the offender.
func TestRunRejectsMalformedPins(t *testing.T) {
	for _, tc := range []struct {
		name, pin, wantErr string
	}{
		{"bad-seed", "- experiment: fig6\n- seed: one\n- scale: 0.1\n- fingerprint: x", "bad seed"},
		{"bad-scale", "- experiment: fig6\n- seed: 1\n- scale: tiny\n- fingerprint: x", "bad scale"},
		{"no-experiment", "- seed: 1\n- scale: 0.1\n- fingerprint: x", "missing experiment"},
		{"no-seed", "- experiment: fig6\n- scale: 0.1\n- fingerprint: x", "missing seed"},
		{"no-scale", "- experiment: fig6\n- seed: 1\n- fingerprint: x", "missing scale"},
		{"no-fingerprint", "- experiment: fig6\n- seed: 1\n- scale: 0.1", "missing fingerprint"},
	} {
		dir := t.TempDir()
		writeFinding(t, dir, tc.name, finding(tc.pin))
		var out, errOut strings.Builder
		if code := run([]string{"-dir", dir, "-run=false"}, &out, &errOut); code != 1 {
			t.Fatalf("%s: exit %d, want 1", tc.name, code)
		}
		if !strings.Contains(errOut.String(), tc.wantErr) {
			t.Fatalf("%s: error should contain %q:\n%s", tc.name, tc.wantErr, errOut.String())
		}
	}
}
