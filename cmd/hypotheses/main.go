// Command hypotheses validates the hypothesis lab (the hypotheses/
// directory): every hypotheses/*/FINDINGS.md must state its claim, the
// seeds it ran, and its result, and must pin the experiment cell its
// numbers came from (experiment, seed, scale, output fingerprint). The
// tool re-runs each pinned cell and fails when the live fingerprint no
// longer matches the recorded one — a finding whose numbers the current
// code cannot reproduce is stale, and CI should say so before a reader
// trusts it.
//
// Usage:
//
//	hypotheses [-dir hypotheses] [-run=false]
//
// -run=false skips the re-runs and checks document structure only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/verify"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// requiredSections are the headings every FINDINGS.md must fill in.
var requiredSections = []string{"Claim", "Seeds", "Result", "Pinned cell"}

// pin is the machine-readable cell a finding's numbers came from.
type pin struct {
	Experiment  string
	Seed        int64
	Scale       float64
	Fingerprint string
}

// run is the testable entry point: structural and flag errors exit 2,
// reproduction failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hypotheses", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "hypotheses", "hypothesis lab directory")
	rerun := fs.Bool("run", true, "re-run each pinned cell and check its fingerprint")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	files, err := filepath.Glob(filepath.Join(*dir, "*", "FINDINGS.md"))
	if err != nil {
		fmt.Fprintf(stderr, "hypotheses: %v\n", err)
		return 2
	}
	sort.Strings(files)
	if len(files) == 0 {
		fmt.Fprintf(stderr, "hypotheses: no %s/*/FINDINGS.md found\n", *dir)
		return 2
	}

	failed := 0
	for _, f := range files {
		if err := checkFindings(f, *rerun); err != nil {
			fmt.Fprintf(stderr, "FAIL %s: %v\n", f, err)
			failed++
			continue
		}
		fmt.Fprintf(stdout, "ok   %s\n", f)
	}
	fmt.Fprintf(stdout, "hypotheses: %d/%d findings reproduced\n", len(files)-failed, len(files))
	if failed > 0 {
		return 1
	}
	return 0
}

// checkFindings validates one FINDINGS.md and, when rerun is set,
// reproduces its pinned cell.
func checkFindings(path string, rerun bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	secs := sections(string(raw))
	for _, name := range requiredSections {
		if strings.TrimSpace(secs[name]) == "" {
			return fmt.Errorf("missing or empty section %q", "## "+name)
		}
	}
	p, err := parsePin(secs["Pinned cell"])
	if err != nil {
		return err
	}
	if _, ok := experiments.Lookup(p.Experiment); !ok {
		return fmt.Errorf("pinned experiment %q is not in the registry (valid: %s)",
			p.Experiment, strings.Join(experiments.Names(), ","))
	}
	if !rerun {
		return nil
	}
	e, _ := experiments.Lookup(p.Experiment)
	res, err := e.Run(experiments.Config{Seed: p.Seed, Scale: p.Scale})
	if err != nil {
		return fmt.Errorf("re-running %s seed=%d scale=%g: %w", p.Experiment, p.Seed, p.Scale, err)
	}
	lines, err := verify.Canonicalize(res)
	if err != nil {
		return err
	}
	if got := verify.FingerprintLines(lines); got != p.Fingerprint {
		return fmt.Errorf("%s seed=%d scale=%g reproduces fingerprint %s, finding pinned %s — the numbers in this finding are stale",
			p.Experiment, p.Seed, p.Scale, got, p.Fingerprint)
	}
	return nil
}

// sections splits a markdown document into "## Heading" → body.
func sections(doc string) map[string]string {
	out := map[string]string{}
	var name string
	var body strings.Builder
	flush := func() {
		if name != "" {
			out[name] = body.String()
		}
		body.Reset()
	}
	for _, line := range strings.Split(doc, "\n") {
		if h, ok := strings.CutPrefix(line, "## "); ok {
			flush()
			name = strings.TrimSpace(h)
			continue
		}
		body.WriteString(line)
		body.WriteString("\n")
	}
	flush()
	return out
}

// parsePin extracts the pinned-cell fields from the section body. Lines
// look like "- experiment: schedlab" (the leading "- " is optional).
func parsePin(body string) (pin, error) {
	var p pin
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "- "))
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		v = strings.TrimSpace(v)
		var err error
		switch strings.TrimSpace(k) {
		case "experiment":
			p.Experiment = v
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "scale":
			p.Scale, err = strconv.ParseFloat(v, 64)
		case "fingerprint":
			p.Fingerprint = v
		}
		if err != nil {
			return p, fmt.Errorf("pinned cell: bad %s %q: %v", strings.TrimSpace(k), v, err)
		}
	}
	switch {
	case p.Experiment == "":
		return p, fmt.Errorf("pinned cell: missing experiment")
	case p.Seed == 0:
		return p, fmt.Errorf("pinned cell: missing seed")
	case p.Scale <= 0:
		return p, fmt.Errorf("pinned cell: missing scale")
	case p.Fingerprint == "":
		return p, fmt.Errorf("pinned cell: missing fingerprint")
	}
	return p, nil
}
