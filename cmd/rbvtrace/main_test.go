package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrintsTimelines(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-app", "tpcc", "-requests", "6", "-limit", "2", "-seed", "7"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	text := out.String()
	if !strings.Contains(text, "tpcc: 6 requests traced") {
		t.Fatalf("header missing: %s", text)
	}
	for _, row := range []string{"progress", "CPI", "L2ref/ins", "missratio"} {
		if !strings.Contains(text, row) {
			t.Fatalf("%s row missing:\n%s", row, text)
		}
	}
	// -limit 2 prints exactly two timelines.
	if got := strings.Count(text, "progress"); got != 2 {
		t.Fatalf("printed %d timelines, want 2", got)
	}
}

// Identical seeds produce byte-identical dumps — rbvtrace output is part of
// the deterministic surface users compare across machines.
func TestRunIsDeterministic(t *testing.T) {
	dump := func() string {
		var out, errBuf bytes.Buffer
		if code := run([]string{"-app", "webwork", "-requests", "3", "-limit", "3", "-seed", "11"}, &out, &errBuf); code != 0 {
			t.Fatalf("exit %d: %s", code, errBuf.String())
		}
		return out.String()
	}
	if a, b := dump(), dump(); a != b {
		t.Fatal("identical invocations diverged")
	}
}

func TestRunBuckets(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-app", "tpcc", "-requests", "3", "-limit", "1", "-buckets", "5"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	// 5 buckets: the progress header ends at exactly 100% in 5 steps.
	if !strings.Contains(out.String(), "20%     40%     60%     80%    100%") {
		t.Fatalf("expected 5 progress buckets:\n%s", out.String())
	}
}

func TestRunUnknownAppExitsTwo(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-app", "nosuch"}, &out, &errBuf)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "rbvtrace:") {
		t.Fatalf("error not reported: %s", errBuf.String())
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// -topology overrides the machine: a half-clock topology stretches every
// request's virtual time, which shows up as a different (still
// deterministic) dump; a bad spec exits 2 naming the field.
func TestRunTopologyOverride(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-app", "webserver", "-requests", "2", "-limit", "1",
		"-topology", "pkg=1:0.5,3:1:8;clock=2.5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "webserver: 2 requests traced") {
		t.Fatalf("header missing: %s", out.String())
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-topology", "pkg=2:-1"}, &out, &errBuf); code != 2 {
		t.Fatalf("bad topology spec should exit 2, got %d", code)
	}
	if !strings.Contains(errBuf.String(), "FreqScale") {
		t.Fatalf("error should name the offending field: %s", errBuf.String())
	}
}
