// Command rbvtrace runs one application with the paper's online tracking
// and dumps per-request metric timelines, for inspection of intra-request
// behavior variations (the raw material of the paper's Figure 2).
//
// Usage:
//
//	rbvtrace [-app NAME] [-requests N] [-cores N] [-seed N] [-limit N] [-buckets N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	appName := flag.String("app", "tpcc", "application: webserver, tpcc, tpch, rubis, webwork")
	requests := flag.Int("requests", 20, "requests to run")
	cores := flag.Int("cores", 0, "machine cores (0 = the paper's 4)")
	seed := flag.Int64("seed", 1, "random seed")
	limit := flag.Int("limit", 3, "number of request timelines to print")
	buckets := flag.Int("buckets", 20, "resampling buckets per request")
	flag.Parse()

	app, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbvtrace:", err)
		os.Exit(2)
	}
	res, err := core.Run(core.Options{
		App:      app,
		Cores:    *cores,
		Requests: *requests,
		Sampling: core.DefaultSampling(app),
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbvtrace:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d requests traced, %d samples (%.2f us sampling overhead)\n\n",
		app.Name(), res.Store.Len(), res.Samples.Total(), res.Samples.OverheadNs()/1000)
	for i, tr := range res.Store.Traces {
		if i >= *limit {
			break
		}
		fmt.Printf("%s\n", tr)
		bucket := float64(tr.Instructions()) / float64(*buckets)
		if bucket <= 0 {
			continue
		}
		cpi := tr.Resampled(metrics.CPI, bucket)
		refs := tr.Resampled(metrics.L2RefsPerIns, bucket)
		miss := tr.Resampled(metrics.L2MissRatio, bucket)
		fmt.Printf("  %-10s", "progress")
		for b := range cpi {
			fmt.Printf(" %6.0f%%", float64(b+1)/float64(len(cpi))*100)
		}
		fmt.Println()
		row := func(name string, vals []float64) {
			fmt.Printf("  %-10s", name)
			for _, v := range vals {
				fmt.Printf(" %7.3f", v)
			}
			fmt.Println()
		}
		row("CPI", cpi)
		row("L2ref/ins", refs)
		row("missratio", miss)
		if n := len(tr.Syscalls); n > 0 {
			max := n
			if max > 12 {
				max = 12
			}
			fmt.Printf("  syscalls (%d):", n)
			for _, s := range tr.Syscalls[:max] {
				fmt.Printf(" %s", s.Name)
			}
			if n > max {
				fmt.Print(" ...")
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
