// Command rbvtrace runs one application with the paper's online tracking
// and dumps per-request metric timelines, for inspection of intra-request
// behavior variations (the raw material of the paper's Figure 2).
//
// Usage:
//
//	rbvtrace [-app NAME] [-requests N] [-cores N] [-topology SPEC] [-seed N] [-limit N] [-buckets N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flag and lookup errors exit 2, run
// failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rbvtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "tpcc", "application: webserver, tpcc, tpch, rubis, webwork")
	requests := fs.Int("requests", 20, "requests to run")
	cores := fs.Int("cores", 0, "machine cores (0 = the paper's 4; deprecated, use -topology)")
	topoSpec := fs.String("topology", "", "machine topology spec, e.g. pkg=4:0.85,4:1.15 (see machine.ParseTopology)")
	seed := fs.Int64("seed", 1, "random seed")
	limit := fs.Int("limit", 3, "number of request timelines to print")
	buckets := fs.Int("buckets", 20, "resampling buckets per request")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	app, err := workload.ByName(*appName)
	if err != nil {
		fmt.Fprintln(stderr, "rbvtrace:", err)
		return 2
	}
	var extra []core.Option
	if *topoSpec != "" {
		topo, err := machine.ParseTopology(*topoSpec)
		if err != nil {
			fmt.Fprintln(stderr, "rbvtrace:", err)
			return 2
		}
		extra = append(extra, core.WithTopology(topo))
	}
	res, err := core.Run(core.Options{
		App:      app,
		Cores:    *cores,
		Requests: *requests,
		Sampling: core.DefaultSampling(app),
		Seed:     *seed,
	}, extra...)
	if err != nil {
		fmt.Fprintln(stderr, "rbvtrace:", err)
		return 1
	}

	fmt.Fprintf(stdout, "%s: %d requests traced, %d samples (%.2f us sampling overhead)\n\n",
		app.Name(), res.Store.Len(), res.Samples.Total(), res.Samples.OverheadNs()/1000)
	for i, tr := range res.Store.Traces {
		if i >= *limit {
			break
		}
		fmt.Fprintf(stdout, "%s\n", tr)
		bucket := float64(tr.Instructions()) / float64(*buckets)
		if bucket <= 0 {
			continue
		}
		cpi := tr.Resampled(metrics.CPI, bucket)
		refs := tr.Resampled(metrics.L2RefsPerIns, bucket)
		miss := tr.Resampled(metrics.L2MissRatio, bucket)
		fmt.Fprintf(stdout, "  %-10s", "progress")
		for b := range cpi {
			fmt.Fprintf(stdout, " %6.0f%%", float64(b+1)/float64(len(cpi))*100)
		}
		fmt.Fprintln(stdout)
		row := func(name string, vals []float64) {
			fmt.Fprintf(stdout, "  %-10s", name)
			for _, v := range vals {
				fmt.Fprintf(stdout, " %7.3f", v)
			}
			fmt.Fprintln(stdout)
		}
		row("CPI", cpi)
		row("L2ref/ins", refs)
		row("missratio", miss)
		if n := len(tr.Syscalls); n > 0 {
			max := n
			if max > 12 {
				max = 12
			}
			fmt.Fprintf(stdout, "  syscalls (%d):", n)
			for _, s := range tr.Syscalls[:max] {
				fmt.Fprintf(stdout, " %s", s.Name)
			}
			if n > max {
				fmt.Fprint(stdout, " ...")
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
