package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path → source under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func check(t *testing.T, files map[string]string) (code int, out string) {
	t.Helper()
	dir := writeTree(t, files)
	var stdout, stderr bytes.Buffer
	code = run([]string{dir}, &stdout, &stderr)
	if stderr.Len() > 0 {
		t.Fatalf("stderr: %s", stderr.String())
	}
	return code, stdout.String()
}

func TestFlagsLocalMapRange(t *testing.T) {
	code, out := check(t, map[string]string{"a.go": `package p
func render() {
	m := map[string]int{"a": 1}
	for k := range m {
		_ = k
	}
}
`})
	if code != 1 || !strings.Contains(out, `range over map "m"`) {
		t.Fatalf("exit %d, out %q", code, out)
	}
}

func TestAnnotationSuppresses(t *testing.T) {
	code, out := check(t, map[string]string{"a.go": `package p
func tally() {
	m := make(map[string]int)
	total := 0
	for _, v := range m { // maporder:ok order-free sum
		total += v
	}
	_ = total
}
`})
	if code != 0 {
		t.Fatalf("annotated site flagged: %s", out)
	}
}

// The same name may be a map in one function and a slice in another; only
// the map function's range is a finding (the file-scoped version of this
// check flagged slice ranges in sibling functions).
func TestScopingIsPerFunction(t *testing.T) {
	code, out := check(t, map[string]string{"a.go": `package p
func usesMap() map[string]int {
	out := map[string]int{}
	return out
}
func usesSlice() []int {
	out := []int{1, 2}
	for i := range out {
		out[i]++
	}
	return out
}
`})
	if code != 0 {
		t.Fatalf("slice range flagged as map: %s", out)
	}
}

func TestPackageLevelMapVar(t *testing.T) {
	code, out := check(t, map[string]string{"a.go": `package p
var registry = map[string]int{}
func dump() {
	for k := range registry {
		_ = k
	}
}
`})
	if code != 1 || !strings.Contains(out, `"registry"`) {
		t.Fatalf("exit %d, out %q", code, out)
	}
}

func TestSkipsTestFilesAndTestdata(t *testing.T) {
	bad := `package p
func f() {
	m := map[int]int{}
	for k := range m {
		_ = k
	}
}
`
	code, out := check(t, map[string]string{
		"a_test.go":     bad,
		"testdata/b.go": bad,
	})
	if code != 0 {
		t.Fatalf("test/testdata files flagged: %s", out)
	}
}

// The type-checked analysis sees maps however they arrive — function
// returns, struct fields, parameters, named map types, and declarations
// in sibling files — not just same-function literals.
func TestFlagsTypedMapSources(t *testing.T) {
	code, out := check(t, map[string]string{
		"a.go": `package p
type Set map[string]bool
type box struct{ idx map[int]string }
func build() map[string]int { return map[string]int{"a": 1} }
func fromReturn() {
	for k := range build() {
		_ = k
	}
}
func fromField(b box) {
	for k := range b.idx {
		_ = k
	}
}
func fromParam(m map[int]int) {
	for k := range m {
		_ = k
	}
}
func fromNamed(s Set) {
	for k := range s {
		_ = k
	}
}
`,
		"b.go": `package p
func fromSibling() {
	for k := range shared {
		_ = k
	}
}
`,
		"c.go": `package p
var shared = map[string]int{}
`,
	})
	if code != 1 {
		t.Fatalf("exit %d, out %q", code, out)
	}
	for _, want := range []string{`"build()"`, `"b.idx"`, `"m"`, `"s"`, `"shared"`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing finding for %s in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "5 unannotated") {
		t.Errorf("want 5 findings, got:\n%s", out)
	}
}

// Channels, slices, strings, and integers range deterministically; none
// may be flagged even when their elements are maps.
func TestNonMapRangesPass(t *testing.T) {
	code, out := check(t, map[string]string{"a.go": `package p
func ok(ch chan int, ms []map[int]int, s string, n int) {
	for v := range ch {
		_ = v
	}
	for i := range ms {
		_ = i
	}
	for _, r := range s {
		_ = r
	}
	for i := range n {
		_ = i
	}
}
`})
	if code != 0 {
		t.Fatalf("non-map range flagged: %s", out)
	}
}

func TestNoArgsExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
