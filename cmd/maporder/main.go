// Command maporder is the deterministic-output audit `make check` runs:
// it flags `for … range m` statements where m is anything map-typed. Map
// iteration order is randomized per run, so any such loop that feeds a
// result struct, a rendered table, or an accumulating slice is a
// nondeterminism bug — the repo's outputs are golden-fingerprinted, and a
// map-order dependency surfaces as a flaky verify failure long after the
// PR that introduced it.
//
// Usage:
//
//	go run ./cmd/maporder DIR...
//
// Each DIR is walked recursively for package directories (testdata and
// _test.go files are skipped: test assertion loops don't feed
// fingerprinted output, and flagging them would bury the real signal in
// annotations). A site where iteration order provably cannot reach an
// output — per-key accumulation, draining a set into a sorted slice — is
// annotated with a trailing `// maporder:ok <why>` comment, which
// suppresses the finding and documents the reasoning at the loop.
//
// The audit type-checks every package it visits, so the range subject's
// map-ness is decided by go/types, not by syntax: maps arriving through
// function returns, struct fields, parameters, named map types, and
// declarations in sibling files are all in scope. Imports inside this
// module resolve by path mapping against go.mod; everything else (the
// standard library) resolves through the source importer. Residual type
// errors are tolerated — an expression the checker could not type is
// skipped, never guessed at.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: maporder DIR...")
		return 2
	}
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(stderr, "maporder: %v\n", err)
		return 2
	}

	// Collect package directories: every directory under the roots holding
	// at least one non-test .go file.
	dirSet := map[string]bool{}
	for _, dir := range args {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != dir {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dirSet[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "maporder: %v\n", err)
			return 2
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for dir := range dirSet { // maporder:ok sorted immediately below
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	l := newLoader(modRoot, modPath)
	findings := 0
	for _, dir := range dirs {
		n, err := checkDir(l, dir, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "maporder: %v\n", err)
			return 2
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(stdout, "maporder: %d unannotated map-range site(s) — iterate a sorted key slice, or annotate with `// maporder:ok <why>`\n", findings)
		return 1
	}
	return 0
}

// findModule walks up from start to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(start string) (root, path string, err error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", "", err
	}
	for {
		if data, err := os.ReadFile(filepath.Join(dir, "go.mod")); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod at or above %s", start)
		}
		dir = parent
	}
}

// loader is a minimal module-aware package loader: import paths inside
// the module map to directories under the module root and are
// type-checked from source (memoized); everything else — the standard
// library — delegates to go/importer's source importer on the shared
// FileSet.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*types.Package
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		pkg, _, err := l.load(path, dir, nil)
		return pkg, err
	}
	return l.std.Import(path)
}

// moduleDir maps an import path inside this module to its directory.
func (l *loader) moduleDir(path string) (string, bool) {
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importPathOf derives a package path for a directory being audited. A
// directory outside the module (the tests' temporary trees) gets its
// absolute path as a synthetic package path — type-checking does not
// care, and module-internal imports still resolve through the loader.
func (l *loader) importPathOf(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return abs
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// load parses and type-checks one package directory. Dependency loads
// (info == nil) are memoized; audit loads pass an Info to capture the
// expression types the range scan needs.
func (l *loader) load(path, dir string, info *types.Info) (*types.Package, []*ast.File, error) {
	if info == nil {
		if p, ok := l.pkgs[path]; ok {
			return p, nil, nil
		}
		if l.loading[path] {
			return nil, nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		// The repo builds clean; any residual error (an unresolvable
		// import, platform-gated code) leaves the affected expressions
		// untyped, and untyped range subjects are skipped, not guessed at.
		Error: func(error) {},
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if info == nil {
		l.pkgs[path] = pkg
	}
	return pkg, files, nil
}

// parseDir parses the directory's non-test .go files in name order.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkDir type-checks one audited package and reports its unannotated
// map ranges.
func checkDir(l *loader, dir string, out io.Writer) (int, error) {
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	_, files, err := l.load(l.importPathOf(dir), dir, info)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, f := range files {
		findings += checkFile(l.fset, f, info, out)
	}
	return findings, nil
}

// checkFile scans one file's range statements against the package's type
// information.
func checkFile(fset *token.FileSet, f *ast.File, info *types.Info, out io.Writer) int {
	// Annotated lines: a `// maporder:ok` comment suppresses the finding on
	// its own line (trailing comment) or the line above.
	okLines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "maporder:ok") {
				line := fset.Position(c.Pos()).Line
				okLines[line] = true
				okLines[line+1] = true
			}
		}
	}
	findings := 0
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		pos := fset.Position(rs.Pos())
		if okLines[pos.Line] {
			return true
		}
		fmt.Fprintf(out, "%s:%d: range over map %q (iteration order is randomized)\n",
			pos.Filename, pos.Line, types.ExprString(rs.X))
		findings++
		return true
	})
	return findings
}
