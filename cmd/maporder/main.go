// Command maporder is the deterministic-output audit `make check` runs:
// it flags `for … range m` statements where m is a map declared in the
// same file. Map iteration order is randomized per run, so any such loop
// that feeds a result struct, a rendered table, or an accumulating slice
// is a nondeterminism bug — the repo's outputs are golden-fingerprinted,
// and a map-order dependency surfaces as a flaky verify failure long after
// the PR that introduced it.
//
// Usage:
//
//	go run ./cmd/maporder DIR...
//
// Each DIR is walked recursively for .go files (testdata and _test.go
// files are skipped: test assertion loops don't feed fingerprinted
// output, and flagging them would bury the real signal in annotations).
// A site where iteration order provably cannot reach an output — per-key
// accumulation, draining a set into a sorted slice — is annotated with a
// trailing `// maporder:ok <why>` comment, which suppresses the finding
// and documents the reasoning at the loop.
//
// The check is a syntactic heuristic, not a type-checked analysis: it sees
// maps declared in the same function (var declarations, := / = assignments
// of map literals or make calls) plus package-level map vars; maps arriving
// through function returns, parameters, or struct fields are out of scope.
// That catches the real failure class — locally built tally/index maps
// ranged while rendering — with zero dependencies and no build overhead;
// cross-package map returns are covered by the golden verification sweep
// instead.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: maporder DIR...")
		return 2
	}
	var files []string
	for _, dir := range args {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != dir {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(stderr, "maporder: %v\n", err)
			return 2
		}
	}

	findings := 0
	for _, path := range files {
		n, err := checkFile(path, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "maporder: %v\n", err)
			return 2
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(stdout, "maporder: %d unannotated map-range site(s) — iterate a sorted key slice, or annotate with `// maporder:ok <why>`\n", findings)
		return 1
	}
	return 0
}

// checkFile reports unannotated map ranges in one file.
func checkFile(path string, out io.Writer) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}

	// Annotated lines: a `// maporder:ok` comment suppresses the finding on
	// its own line (trailing comment) or the line above.
	okLines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "maporder:ok") {
				line := fset.Position(c.Pos()).Line
				okLines[line] = true
				okLines[line+1] = true
			}
		}
	}

	// Package-level map vars are visible in every function.
	pkgMaps := map[string]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			recordSpec(vs, pkgMaps)
		}
	}

	// Identifier scoping is per function: the same name may be a map in one
	// function and a slice in another, so a file-wide identifier set would
	// produce false positives either way.
	findings := 0
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		mapIdents := map[string]bool{}
		for k := range pkgMaps { // maporder:ok set copy, no ordering
			mapIdents[k] = true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if isMapExpr(n.Rhs[i]) {
								mapIdents[id.Name] = true
							} else if _, shadows := mapIdents[id.Name]; shadows && n.Tok == token.DEFINE {
								// A := rebinding to a non-map expression
								// shadows any earlier map of that name.
								delete(mapIdents, id.Name)
							}
						}
					}
				}
			case *ast.ValueSpec:
				recordSpec(n, mapIdents)
			}
			return true
		})
		if len(mapIdents) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			id, ok := rs.X.(*ast.Ident)
			if !ok || !mapIdents[id.Name] {
				return true
			}
			pos := fset.Position(rs.Pos())
			if okLines[pos.Line] {
				return true
			}
			fmt.Fprintf(out, "%s:%d: range over map %q (iteration order is randomized)\n", path, pos.Line, id.Name)
			findings++
			return true
		})
	}
	return findings, nil
}

// recordSpec adds a ValueSpec's map-typed or map-valued names to the set.
func recordSpec(vs *ast.ValueSpec, set map[string]bool) {
	if _, ok := vs.Type.(*ast.MapType); ok {
		for _, name := range vs.Names {
			if name.Name != "_" {
				set[name.Name] = true
			}
		}
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) && name.Name != "_" && isMapExpr(vs.Values[i]) {
			set[name.Name] = true
		}
	}
}

// isMapExpr reports whether an expression evidently produces a map: a map
// literal, make(map[...]), or a conversion to a map type.
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}
