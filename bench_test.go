// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per table/figure, reporting the
// experiment's headline quantity as a custom metric) plus ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use a reduced request-count scale so a full sweep completes in
// minutes; cmd/rbvrepro runs the full-scale evaluation.
package repro_test

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sampling"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchCfg scales the experiments down for benchmarking.
var benchCfg = experiments.Config{Seed: 1, Scale: 0.15}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Apps {
			if a.App == "tpch" {
				b.ReportMetric(a.ConcurrentP90/a.SerialP90, "tpch-p90-ratio")
			}
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var cov float64
		for _, q := range r.Requests {
			cov += q.CPICoV
		}
		b.ReportMetric(cov/float64(len(r.Requests)), "mean-intra-CoV")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].TimeCostNs, "kernel-sample-ns")
		b.ReportMetric(r.Rows[2].TimeCostNs, "intr-sample-ns")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Apps {
			if a.App == "tpch" {
				b.ReportMetric(a.WithIntra[metrics.CPI]/a.InterOnly[metrics.CPI], "tpch-intra-gain")
			}
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Apps {
			if a.App == "webserver" {
				b.ReportMetric(a.At(16)*100, "web-pct-within-16us")
			}
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var saving float64
		for _, a := range r.Apps {
			saving += (1 - a.Normalized) * 100
		}
		b.ReportMetric(saving/float64(len(r.Apps)), "mean-saving-pct")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if s, ok := r.Signal("writev"); ok {
			b.ReportMetric(s.Mean, "writev-cpi-change")
		}
		b.ReportMetric(r.SignalCoV/r.UniformCoV, "signal-cov-gain")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "l1-overestimation")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean("DTW+asynchrony-penalty", false)*100, "dtwpen-divergence-pct")
		b.ReportMetric(r.Mean("DTW-CPI-variations", false)*100, "plaindtw-divergence-pct")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Comparison.Analysis.MissCorrelation, "cpi-miss-correlation")
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Comparison.Analysis.RefsExcess, "refs-excess")
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		var pat, avg float64
		for _, a := range r.Apps {
			pat += a.FinalErr(true)
			avg += a.FinalErr(false)
		}
		n := float64(len(r.Apps))
		b.ReportMetric(pat/n*100, "pattern-final-err-pct")
		b.ReportMetric(avg/n*100, "average-final-err-pct")
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range r.Apps {
			if a.App == "tpch" {
				b.ReportMetric(a.RMSE["request average"]/a.RMSE[a.Best()], "tpch-avg-vs-best")
			}
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Apps[0].Reduction()*100, "tpch-4high-reduction-pct")
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Apps[0].WorstCaseReduction()*100, "tpch-p999-reduction-pct")
	}
}

// BenchmarkPairwiseMatrix measures the pairwise-distance engine on a
// 200-request population of CPI-like patterns under the paper's
// asynchrony-penalized DTW: the serial fill vs the GOMAXPROCS worker pool
// (the speedup target is ≥3× at GOMAXPROCS ≥ 4), plus the Sakoe-Chiba
// banded fill. A one-time check asserts the parallel matrix is
// element-for-element identical to the serial one.
func BenchmarkPairwiseMatrix(b *testing.B) {
	const population = 200
	g := sim.NewRNG(42)
	seqs := make([][]float64, population)
	for i := range seqs {
		n := 48 + g.Intn(33) // resampled pattern lengths vary per request
		s := make([]float64, n)
		cpi := 2.0
		for j := range s {
			cpi += g.Normal(0, 0.15)
			if cpi < 0.5 {
				cpi = 0.5
			}
			s[j] = cpi
		}
		seqs[i] = s
	}
	d := distance.DTW{AsyncPenalty: 0.5}

	serial := distance.NewMatrixFromSequences(seqs, d, distance.MatrixOptions{Workers: 1})
	parallel := distance.NewMatrixFromSequences(seqs, d, distance.MatrixOptions{})
	for i := 0; i < population; i++ {
		for j := 0; j < population; j++ {
			if serial.At(i, j) != parallel.At(i, j) {
				b.Fatalf("parallel matrix differs at (%d,%d): %v vs %v",
					i, j, parallel.At(i, j), serial.At(i, j))
			}
		}
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			distance.NewMatrixFromSequences(seqs, d, distance.MatrixOptions{Workers: 1})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		for i := 0; i < b.N; i++ {
			distance.NewMatrixFromSequences(seqs, d, distance.MatrixOptions{})
		}
	})
	b.Run("parallel-banded", func(b *testing.B) {
		banded := distance.DTW{AsyncPenalty: 0.5, Window: 8}
		for i := 0; i < b.N; i++ {
			distance.NewMatrixFromSequences(seqs, banded, distance.MatrixOptions{})
		}
	})
}

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationContention quantifies design choice 1: disabling the
// analytic contention model collapses the 4-core CPI spread back to the
// 1-core clusters (Figure 1's phenomenon disappears).
func BenchmarkAblationContention(b *testing.B) {
	app := workload.NewTPCH()
	for i := 0; i < b.N; i++ {
		withC, err := core.Run(core.Options{
			App: app, Requests: 20, Sampling: core.DefaultSampling(app), Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Run(core.Options{
			App: app, Requests: 20, Sampling: core.DefaultSampling(app), Seed: 1,
			NoContention: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		on := stats.Percentile(withC.Store.MetricValues(metrics.CPI), 90)
		off := stats.Percentile(without.Store.MetricValues(metrics.CPI), 90)
		b.ReportMetric(on/off, "contention-p90-inflation")
	}
}

// BenchmarkAblationDTWPenalty quantifies design choice 2: without the
// asynchrony penalty, dynamic time warping under-estimates request
// differences and classification quality collapses (Figure 7's claim).
func BenchmarkAblationDTWPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7(experiments.Config{Seed: 1, Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		pen := r.Mean("DTW+asynchrony-penalty", false)
		plain := r.Mean("DTW-CPI-variations", false)
		if pen == 0 {
			pen = 1e-9
		}
		b.ReportMetric(plain/pen, "penalty-quality-gain")
	}
}

// BenchmarkAblationVaEWMA quantifies design choice 3: variable aging vs the
// plain EWMA on irregular-length observations.
func BenchmarkAblationVaEWMA(b *testing.B) {
	g := sim.NewRNG(7)
	// A two-level signal observed with wildly varying period lengths, and
	// measurement noise that shrinks with period length (short periods are
	// noisy). The plain EWMA weighs a 50 µs burst sample as much as a 1 ms
	// one; variable aging weighs each by its length, which is the point of
	// Equation 5.
	type obs struct{ v, l float64 }
	var series []obs
	level := 0.01
	for i := 0; i < 5000; i++ {
		if g.Bool(0.02) {
			level = g.Uniform(0.005, 0.05)
		}
		l := g.Exp(1.0) + 0.05
		noise := g.Normal(0, 0.004/math.Sqrt(l))
		series = append(series, obs{level + noise, l})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ew := predict.NewEWMA(0.6)
		va := predict.NewVaEWMA(0.6, 1)
		var ewErr, vaErr, w float64
		for _, o := range series {
			de := ew.Predict() - o.v
			dv := va.Predict() - o.v
			ewErr += o.l * de * de
			vaErr += o.l * dv * dv
			w += o.l
			ew.Observe(o.v, o.l)
			va.Observe(o.v, o.l)
		}
		b.ReportMetric(ewErr/vaErr, "ewma-vs-vaewma-mse")
		_ = w
	}
}

// BenchmarkAblationCompensation quantifies design choice 4: the "do no
// harm" observer-effect compensation's bias reduction at fine sampling.
func BenchmarkAblationCompensation(b *testing.B) {
	app := workload.NewWebServer()
	for i := 0; i < b.N; i++ {
		run := func(comp bool) float64 {
			scfg := core.DefaultSampling(app)
			scfg.Compensate = comp
			res, err := core.Run(core.Options{
				App: app, Requests: 60, Sampling: scfg, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			return stats.Mean(res.Store.MetricValues(metrics.CPI))
		}
		b.ReportMetric(run(false)/run(true), "uncompensated-cpi-bias")
	}
}

// BenchmarkAblationBackupTimer quantifies design choice 5: without the
// backup interrupt, syscall-triggered sampling loses coverage on
// system-call-sparse applications (WeBWorK, whose syscall gaps average
// ~0.6 ms and often exceed the backup window used here).
func BenchmarkAblationBackupTimer(b *testing.B) {
	app := workload.NewWeBWorK()
	for i := 0; i < b.N; i++ {
		with := sampling.Config{
			Mode:        sampling.SyscallTriggered,
			TsyscallMin: 200 * sim.Microsecond,
			TbackupInt:  500 * sim.Microsecond,
			Compensate:  true,
		}
		without := with
		without.TbackupInt = 0
		run := func(scfg sampling.Config) uint64 {
			res, err := core.Run(core.Options{
				App: app, Requests: 4, Sampling: scfg, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Samples.Total()
		}
		b.ReportMetric(float64(run(with))/float64(run(without)), "backup-coverage-gain")
	}
}

// BenchmarkAblationTopology compares the paper's topology-blind
// contention-easing policy against the topology-aware extension on the
// worst-case (p99) request CPI.
func BenchmarkAblationTopology(b *testing.B) {
	app := workload.NewTPCH()
	base, err := core.Run(core.Options{
		App: app, Requests: 40, Sampling: core.DefaultSampling(app), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	threshold := sched.HighUsageThreshold(base.Store, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := func(policy core.PolicyKind) float64 {
			res, err := core.Run(core.Options{
				App: app, Requests: 40, Sampling: core.DefaultSampling(app),
				Policy: policy, UsageThreshold: threshold, Seed: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			return stats.Percentile(res.Store.MetricValues(metrics.CPI), 99)
		}
		paper := run(core.PolicyContentionEasing)
		topo := run(core.PolicyTopologyAware)
		b.ReportMetric(paper/topo, "paper-vs-topo-p99")
	}
}

// BenchmarkAblationSwitchPollution quantifies the context-switch cache
// pollution cost model: without it, frequent 5 ms re-scheduling is free and
// the scheduler's keep-current-at-head rule stops mattering.
func BenchmarkAblationSwitchPollution(b *testing.B) {
	app := workload.NewTPCH()
	for i := 0; i < b.N; i++ {
		run := func(noPollution bool) float64 {
			res, err := core.Run(core.Options{
				App: app, Requests: 20, Sampling: core.DefaultSampling(app), Seed: 1,
				NoSwitchPollution: noPollution,
			})
			if err != nil {
				b.Fatal(err)
			}
			return stats.Mean(res.Store.MetricValues(metrics.CPI))
		}
		b.ReportMetric(run(false)/run(true), "pollution-cpi-cost")
	}
}
