// Anomaly hunt: detect and explain anomalous requests (Section 4.3). Runs
// TPCH concurrently on the 4-core machine, groups requests by query,
// identifies the request whose variation pattern deviates most from its
// group centroid, and analyzes whether the anomaly is explained by shared-
// cache contention (CPI excess tracking L2 miss excess) or by software-level
// contention (executing extra instructions).
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/anomaly"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	app := workload.NewTPCH()
	res, err := core.Run(core.Options{
		App:      app,
		Requests: 100,
		Sampling: core.DefaultSampling(app),
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := core.NewModeler(app.Name(), res.Store.Traces)
	det := &anomaly.Detector{BucketIns: m.BucketIns, Measure: m.DTWPenalized()}

	// Mode 1: within-group centroid-distance detection, per query type.
	fmt.Println("per-query anomaly detection (distance from group centroid):")
	byType := res.Store.ByType()
	types := make([]string, 0, len(byType))
	for typ := range byType { // maporder:ok sorted immediately below
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		group := byType[typ]
		if len(group) < 3 {
			continue
		}
		centroid, ranked := det.GroupAnomalies(group, metrics.CPI)
		a := ranked[0]
		an := det.Analyze(anomaly.Pair{Anomaly: a.Trace, Reference: centroid})
		fmt.Printf("  %-4s n=%2d  worst distance %.2f  CPI excess %+.2f  miss-corr %.2f\n",
			typ, len(group), a.Distance, an.CPIExcess, an.MissCorrelation)
	}

	// Mode 2: multi-metric pair search over the whole population — similar
	// L2 reference streams, divergent CPI.
	pairs := det.FindPairs(res.Store.Traces, 3)
	fmt.Println("\nmulti-metric anomaly-reference pairs (similar refs/ins, divergent CPI):")
	for _, p := range pairs {
		an := det.Analyze(p)
		fmt.Printf("  anomaly %s vs reference %s\n", p.Anomaly, p.Reference)
		fmt.Printf("    CPI excess %+.3f, CPI-vs-miss correlation %.2f\n",
			an.CPIExcess, an.MissCorrelation)
		fmt.Printf("    instruction excess %.3fx (software contention indicator), refs/ins excess %.3fx\n",
			an.InstructionExcess, an.RefsExcess)
		switch {
		case an.MissCorrelation > 0.5 && an.InstructionExcess < 1.05:
			fmt.Println("    diagnosis: shared-L2 contention (miss pattern explains CPI pattern)")
		case an.InstructionExcess >= 1.05:
			fmt.Println("    diagnosis: includes software-level contention (extra instructions executed)")
		default:
			fmt.Println("    diagnosis: inconclusive")
		}
	}
}
