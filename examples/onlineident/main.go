// Online identification: the paper's Section 4.4 per-request CPU-usage
// prediction run as a serving subsystem. A signature bank is built from
// traced TPC-C requests and compacted to its medoid signatures; the
// remaining requests then stream through the concurrent identification
// service — many in-flight at once, re-identified after every arriving
// bucket, the way a production tier would consult predictions while
// requests execute — and the demo reports prediction accuracy and
// fast-path throughput against the naive full-rescan matcher.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/signature"
	"repro/internal/workload"
)

const bucketIns = 300e3 // TPCC's Figure 10 progress unit

func main() {
	app := workload.NewTPCC()
	res, err := core.Run(core.Options{
		App:      app,
		Requests: 400,
		Sampling: core.DefaultSampling(app),
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	traces := res.Store.Traces
	split := len(traces) * 2 / 3
	test := traces[split:]

	// Build the bank from the modeling portion, then compact it: k-medoids
	// over pairwise pattern distances keeps one representative signature
	// per behavior family, shrinking the per-update candidate set.
	full := signature.Build(traces[:split], metrics.L2RefsPerIns, bucketIns, 500)
	compact := signature.Compact(full, 32, 1)
	fmt.Printf("bank: %d signatures, compacted to %d medoids (threshold %.0f ns)\n",
		len(full.Entries), len(compact.Entries), full.ThresholdNs)

	// Pre-resample the test streams once so the loop below times matching,
	// not resampling.
	streams := make([][]float64, len(test))
	for i, tr := range test {
		streams[i] = tr.Resampled(metrics.L2RefsPerIns, bucketIns)
	}

	for _, bank := range []*signature.Bank{full, compact} {
		svc := signature.NewService(signature.NewMatcher(bank), 0)

		var updates, correct, early atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		var cursor atomic.Int64
		for w := 0; w < runtime.GOMAXPROCS(0); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(streams) {
						return
					}
					id := uint64(i)
					actual := float64(test[i].CPUTime()) > bank.ThresholdNs
					// Stream the request bucket by bucket, consulting the
					// prediction after every arrival.
					settled := -1
					for pos, v := range streams[i] {
						best := svc.Observe(id, v)
						if settled < 0 && bank.HighUsage(best) == actual {
							settled = pos
						}
						updates.Add(1)
					}
					if bank.HighUsage(svc.Best(id)) == actual {
						correct.Add(1)
						if settled == 0 {
							early.Add(1)
						}
					}
					svc.Finish(id)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)

		fmt.Printf("\n%4d-entry bank: %d in-flight requests, %d streaming updates in %v\n",
			len(bank.Entries), len(streams), updates.Load(), elapsed.Round(time.Microsecond))
		fmt.Printf("     throughput: %.2fM updates/s across %d workers\n",
			float64(updates.Load())/elapsed.Seconds()/1e6, runtime.GOMAXPROCS(0))
		fmt.Printf("     final prediction accuracy: %d/%d (%.0f%%), correct from the first bucket: %d\n",
			correct.Load(), len(streams),
			100*float64(correct.Load())/float64(len(streams)), early.Load())
	}
}
