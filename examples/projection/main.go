// Projection: the paper's future-work direction (Section 7) — use the
// characterized request workload to project request resource consumption
// onto new hardware platforms. Captures TPCC traces on the default
// (Xeon 5160-like) platform, then projects per-request CPI and CPU time
// onto hypothetical machines: a faster clock, faster memory, and a bigger
// shared cache. Also demonstrates the transparent stage identification of
// Section 6, annotating one request's stages before projection.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/projection"
	"repro/internal/stages"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	app := workload.NewTPCC()
	// Solo runs give contention-free traces: the regime where per-period
	// cost-model inversion is exact.
	res, err := core.Run(core.Options{
		App: app, Concurrency: 1, Requests: 120,
		Sampling: core.DefaultSampling(app), Seed: 17,
	}, core.WithTopology(machine.Homogeneous(1, 1)))
	if err != nil {
		log.Fatal(err)
	}
	source := projection.FromMachine(machine.DefaultConfig())
	srcCPI := stats.Mean(res.Store.MetricValues(metrics.CPI))
	fmt.Printf("captured %d TPCC requests on the source platform (mean CPI %.2f)\n\n",
		res.Store.Len(), srcCPI)

	targets := []struct {
		name string
		mod  func(*projection.Platform)
	}{
		{"same platform (identity)", func(*projection.Platform) {}},
		{"4.5 GHz clock", func(p *projection.Platform) { p.CyclesPerNs = 4.5 }},
		{"faster memory (150-cycle penalty)", func(p *projection.Platform) { p.Cache.MissPenalty = 150 }},
		{"8 MB shared L2", func(p *projection.Platform) { p.Cache.CapacityBytes *= 2 }},
		{"small 1 MB L2", func(p *projection.Platform) { p.Cache.CapacityBytes /= 4 }},
	}
	fmt.Printf("%-36s %10s %12s\n", "target platform", "mean CPI", "mean speedup")
	for _, tgt := range targets {
		platform := source
		tgt.mod(&platform)
		proj := projection.New(source, platform)
		if err := proj.Validate(); err != nil {
			log.Fatal(err)
		}
		var cpi, speed float64
		results := proj.ProjectAll(res.Store.Traces)
		for _, r := range results {
			cpi += r.CPI
			speed += r.SpeedUp
		}
		n := float64(len(results))
		fmt.Printf("%-36s %10.3f %11.2fx\n", tgt.name, cpi/n, speed/n)
	}

	// Stage identification: segment the longest request and annotate each
	// stage — the transparent alternative to SEDA's programmer-marked
	// stages the paper describes.
	var longest = res.Store.Traces[0]
	for _, tr := range res.Store.Traces {
		if tr.Instructions() > longest.Instructions() {
			longest = tr
		}
	}
	fmt.Printf("\ntransparently identified stages of %s/%s:\n", longest.App, longest.Type)
	ann := stages.AnnotateAll(longest, metrics.CPI, stages.Config{
		BucketIns: float64(longest.Instructions()) / 40,
		MaxStages: 5,
		Tolerance: 0.06,
	})
	for i, st := range ann {
		fmt.Printf("  stage %d: [%5.1f%%, %5.1f%%)  CPI %.2f  L2refs/ins %.4f  missratio %.3f\n",
			i,
			st.StartIns/float64(longest.Instructions())*100,
			st.EndIns/float64(longest.Instructions())*100,
			st.Values[metrics.CPI],
			st.Values[metrics.L2RefsPerIns],
			st.Values[metrics.L2MissRatio])
	}
}
