// Quickstart: run a server workload on the simulated 4-core machine with
// the paper's online request tracking, and print what the tracking sees —
// per-request hardware metrics, inter- vs intra-request variation, and
// sampling overhead.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	app := workload.NewTPCC()

	// Run 200 TPC-C transactions with the paper's Section 3.1 setup:
	// request context switch sampling plus periodic interrupt sampling at
	// the per-application granularity (100 µs for TPCC), with "do no harm"
	// observer-effect compensation.
	res, err := core.Run(core.Options{
		App:      app,
		Requests: 200,
		Sampling: core.DefaultSampling(app),
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d requests in %v simulated time\n", res.Store.Len(), res.WallTime)
	fmt.Printf("context switches: %d, system calls: %d\n", res.ContextSwitches, res.Syscalls)
	fmt.Printf("counter samples: %d (estimated overhead %.1f us)\n\n",
		res.Samples.Total(), res.Samples.OverheadNs()/1000)

	// Whole-request metrics: the inter-request view.
	cpis := res.Store.MetricValues(metrics.CPI)
	fmt.Printf("request CPI: mean %.2f, p50 %.2f, p90 %.2f\n",
		stats.Mean(cpis), stats.Median(cpis), stats.Percentile(cpis, 90))

	// Per-type clusters (the structure behind Figure 1's TPCC multi-modal
	// distribution).
	byType := res.Store.ByType()
	types := make([]string, 0, len(byType))
	for typ := range byType { // maporder:ok sorted immediately below
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		traces := byType[typ]
		var vals []float64
		for _, tr := range traces {
			vals = append(vals, tr.MetricValue(metrics.CPI))
		}
		fmt.Printf("  %-14s %3d requests, CPI %.2f +/- %.2f\n",
			typ, len(traces), stats.Mean(vals), stats.StdDev(vals))
	}

	// Intra-request variation: the paper's central observation is that a
	// single request's behavior fluctuates over its execution.
	var covs []float64
	for _, tr := range res.Store.Traces {
		s := tr.InsSeries(metrics.CPI)
		if s.Len() >= 3 {
			covs = append(covs, s.CoV())
		}
	}
	fmt.Printf("\nintra-request CPI coefficient of variation: mean %.2f across %d requests\n",
		stats.Mean(covs), len(covs))

	// One request's timeline, resampled into ten progress buckets.
	tr := res.Store.Traces[0]
	bucket := float64(tr.Instructions()) / 10
	fmt.Printf("\ntimeline of %s/%s (CPI per 10%% of progress):\n  ", tr.App, tr.Type)
	for _, v := range tr.Resampled(metrics.CPI, bucket) {
		fmt.Printf("%.2f ", v)
	}
	fmt.Println()
}
