// Scheduling: enable the paper's contention-easing CPU scheduler
// (Section 5.2) on a TPCH load and compare against the baseline
// round-robin scheduler: high-usage co-execution time (Figure 12) and
// request CPI, average and worst-case (Figure 13).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	app := workload.NewTPCH()
	const requests = 120

	// Calibration run: derive the high-usage threshold — the 80-percentile
	// of per-period L2 misses per instruction — from baseline traces.
	calib, err := core.Run(core.Options{
		App: app, Requests: requests, Sampling: core.DefaultSampling(app), Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	threshold := sched.HighUsageThreshold(calib.Store, 80)
	fmt.Printf("high-usage threshold (80p of L2 misses/ins): %.2e\n\n", threshold)

	run := func(policy core.PolicyKind) *core.Result {
		res, err := core.Run(core.Options{
			App:              app,
			Requests:         requests,
			Sampling:         core.DefaultSampling(app),
			Policy:           policy,
			UsageThreshold:   threshold,
			MeterCoExecution: true,
			Seed:             11,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(core.PolicyRoundRobin)
	eased := run(core.PolicyContentionEasing)

	fmt.Println("proportion of time with cores simultaneously at high usage:")
	fmt.Printf("  %-10s %-10s %s\n", "level", "original", "contention-easing")
	fmt.Printf("  %-10s %-10.2f %.2f\n", ">=2 cores", base.CoExecution.AtLeast2*100, eased.CoExecution.AtLeast2*100)
	fmt.Printf("  %-10s %-10.2f %.2f\n", ">=3 cores", base.CoExecution.AtLeast3*100, eased.CoExecution.AtLeast3*100)
	fmt.Printf("  %-10s %-10.2f %.2f   (percent)\n", "4 cores", base.CoExecution.All4*100, eased.CoExecution.All4*100)

	bc := base.Store.MetricValues(metrics.CPI)
	ec := eased.Store.MetricValues(metrics.CPI)
	fmt.Println("\nrequest CPI (lower is better):")
	fmt.Printf("  %-16s %-10s %s\n", "", "original", "contention-easing")
	fmt.Printf("  %-16s %-10.3f %.3f\n", "average", stats.Mean(bc), stats.Mean(ec))
	fmt.Printf("  %-16s %-10.3f %.3f\n", "99 percentile", stats.Percentile(bc, 99), stats.Percentile(ec, 99))
	fmt.Printf("  %-16s %-10.3f %.3f\n", "99.9 percentile", stats.Percentile(bc, 99.9), stats.Percentile(ec, 99.9))

	if ps := eased.PolicyStats; ps != nil {
		fmt.Printf("\npolicy decisions: %d opportunities, %d eased picks, %d gave up\n",
			ps.Stats.Opportunities, ps.Stats.Eased, ps.Stats.GaveUp)
	}
	fmt.Println("\nAs in the paper, the scheduler trims the rare most-intensive contention")
	fmt.Println("(and with it the worst-case CPI) while leaving the average nearly unchanged.")
}
