// Distributed: the paper's Section 7 vision — track request behavior
// variations across a distributed server architecture, exposing local and
// inter-machine variations, and use them to guide component placement.
//
// Runs the three-tier RUBiS application over a three-node cluster (web,
// EJB, database on separate machines), prints the per-machine view of the
// stitched distributed traces, then evaluates alternative tier placements
// and recommends one.
package main

import (
	"fmt"
	"log"

	"repro/internal/distributed"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	base := distributed.Config{
		Nodes:     3,
		Sampling:  sampling.Config{Mode: sampling.CtxSwitchOnly, Compensate: true},
		Placement: []int{0, 1, 2}, // web / EJB / DB on separate machines
		Network:   distributed.NetworkConfig{HopLatency: 300 * sim.Microsecond},
		Seed:      5,
	}
	cluster, err := distributed.NewCluster(base)
	if err != nil {
		log.Fatal(err)
	}
	traces := distributed.NewDriver(cluster, workload.NewRUBiS(), 6, 120, 5).Run()

	var lat, net, cpu []float64
	nodeCPU := map[string]float64{}
	for _, tr := range traces {
		lat = append(lat, float64(tr.Latency()))
		net = append(net, float64(tr.NetworkTime()))
		cpu = append(cpu, float64(tr.CPUTime()))
		perNode := tr.PerNodeCPU()
		for _, n := range cluster.Nodes() { // ordered: never range the map
			nodeCPU[n.Name] += float64(perNode[n.Name])
		}
	}
	fmt.Printf("RUBiS across 3 machines, %d requests:\n", len(traces))
	fmt.Printf("  mean latency %.2f ms (CPU %.2f ms + network %.2f ms + queueing)\n",
		stats.Mean(lat)/1e6, stats.Mean(cpu)/1e6, stats.Mean(net)/1e6)
	for _, n := range cluster.Nodes() {
		fmt.Printf("  %s total CPU %.1f ms\n", n.Name, nodeCPU[n.Name]/1e6)
	}

	// Inter-machine variation: per-tier CPI from each node's local traces.
	fmt.Println("\nper-machine request-segment CPI (inter-machine variation view):")
	for _, n := range cluster.Nodes() {
		vals := n.Tracker.Store().MetricValues(metrics.CPI)
		if len(vals) == 0 {
			continue
		}
		fmt.Printf("  %s: %d segments, CPI mean %.2f p90 %.2f\n",
			n.Name, len(vals), stats.Mean(vals), stats.Percentile(vals, 90))
	}

	// Component placement guidance: evaluate candidate placements.
	fmt.Println("\nevaluating tier placements (web, EJB, DB -> node):")
	results, err := distributed.EvaluatePlacements(workload.NewRUBiS(), base, [][]int{
		{0, 1, 2}, // fully spread
		{0, 1, 1}, // EJB with DB
		{0, 0, 1}, // web with EJB
		{0, 0, 0}, // co-located
	}, 6, 80)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf("%s %s\n", marker, r)
	}
	fmt.Println("\n(-> is the advisor's recommendation for this network/load.)")
}
