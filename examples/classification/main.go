// Classification: cluster TPC-C requests by their behavior variation
// patterns with k-medoids under several differencing measures (Section 4.2)
// and compare classification quality — reproducing the heart of the paper's
// Figure 7 on one application.
//
// The demonstration shows the paper's two key findings: variation patterns
// beat whole-request averages for predicting request CPU time, and dynamic
// time warping needs the asynchrony penalty to avoid under-estimating
// differences through free time shifting.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	app := workload.NewTPCC()
	res, err := core.Run(core.Options{
		App:      app,
		Requests: 300,
		Sampling: core.DefaultSampling(app),
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	traces := res.Store.Traces

	// The modeler derives the paper's penalty setting (the 99-percentile
	// peak metric difference) from the request population.
	m := core.NewModeler(app.Name(), traces)
	fmt.Printf("clustering %d TPCC requests, k=10, penalty p=%.3f\n\n", len(traces), m.AsyncPenalty)

	// Pre-resample every request's CPI variation pattern once.
	patterns := make([][]float64, len(traces))
	averages := make([][]float64, len(traces))
	for i, tr := range traces {
		patterns[i] = tr.Resampled(metrics.CPI, m.BucketIns)
		averages[i] = []float64{tr.MetricValue(metrics.CPI)}
	}
	// The property being predicted: request CPU time.
	cpuTimes := make([]float64, len(traces))
	for i, tr := range traces {
		cpuTimes[i] = float64(tr.CPUTime())
	}

	measures := []struct {
		name string
		dist cluster.DistFunc
	}{
		{"average CPI only", func(i, j int) float64 {
			return (distance.AverageDiff{}).Distance(averages[i], averages[j])
		}},
		{"L1 of CPI variations", func(i, j int) float64 {
			return m.L1().Distance(patterns[i], patterns[j])
		}},
		{"plain DTW", func(i, j int) float64 {
			return m.DTW().Distance(patterns[i], patterns[j])
		}},
		{"DTW + asynchrony penalty", func(i, j int) float64 {
			return m.DTWPenalized().Distance(patterns[i], patterns[j])
		}},
	}

	fmt.Printf("%-26s %s\n", "measure", "divergence from centroid (CPU time, lower is better)")
	for _, ms := range measures {
		r := cluster.KMedoids(len(traces), ms.dist, cluster.Config{K: 10, Seed: 1})
		div := cluster.Divergence(r, cpuTimes)
		fmt.Printf("%-26s %.1f%%  (%d clusters, %d iterations)\n",
			ms.name, div*100, len(r.Medoids), r.Iterations)
	}

	// Show what one cluster looks like under the best measure.
	best := cluster.KMedoids(len(traces), measures[3].dist, cluster.Config{K: 10, Seed: 1})
	fmt.Println("\ncluster composition under DTW + asynchrony penalty:")
	for c := range best.Medoids {
		members := best.Members(c)
		types := map[string]int{}
		for _, i := range members {
			types[traces[i].Type]++
		}
		fmt.Printf("  cluster %d (centroid %s): %v\n", c, traces[best.Medoids[c]].Type, types)
	}
}
