# Smoke gate: `make check` runs what CI would — vet, build, the full test
# suite under the race detector, and a single-iteration pass over the
# distance/cluster benchmarks (including the pairwise-matrix engine's
# serial-vs-parallel equality assertion in BenchmarkPairwiseMatrix).
# `make verify` checks the experiment grid against the committed
# golden-fingerprint corpus; `make golden` regenerates the corpus after an
# intentional output change (see README "Verification").

GO ?= go

.PHONY: check vet maporder build test test-dist test-procs bench bench-json bench-smoke faults localize hypotheses verify verify-full golden golden-full cover fuzz

check: vet maporder build test test-dist bench

vet:
	$(GO) vet ./...

# maporder is the deterministic-output audit: no `for … range m` over
# anything map-typed (type-checked, so function returns, struct fields, and
# parameters count) without a `// maporder:ok <why>` annotation — map
# iteration order reaching a result struct or rendered table is exactly the
# class of bug the golden-fingerprint corpus turns into flaky failures.
maporder:
	$(GO) run ./cmd/maporder internal cmd examples

build:
	$(GO) build ./... ./examples/...

test:
	$(GO) test -race ./...

# Focused race-detector pass over the interconnect robustness and fault
# injection suites (also covered by `test`; kept addressable so the
# distributed stack can be iterated on quickly).
test-dist:
	$(GO) test -race ./internal/distributed/... ./internal/fault/...

# GOMAXPROCS matrix leg: the concurrency-heavy packages must pass under the
# race detector at both 1 and 4 procs — single-proc runs surface ordering
# assumptions that parallel runs mask, and vice versa.
# -count=1 defeats the test cache: GOMAXPROCS is read by the runtime, not
# the test binary, so cached results would silently satisfy both legs.
# -timeout 20m: the experiments package fans out whole simulator runs per
# test (the schedlab policy race most of all); serialized under -race at
# GOMAXPROCS=1 the suite legitimately outgrows go test's 10m default.
test-procs:
	GOMAXPROCS=1 $(GO) test -race -count=1 -timeout 20m ./internal/distributed/... ./internal/experiments/...
	GOMAXPROCS=4 $(GO) test -race -count=1 -timeout 20m ./internal/distributed/... ./internal/experiments/...

# faults is the fault-injection smoke: a tiny labeled schedule through the
# full faultanomaly pipeline — injection, retries/hedging on vs off, and
# detector precision/recall/F1 against ground truth.
faults:
	$(GO) run ./cmd/rbvrepro -scale 0.05 -run faultanomaly

# localize is the root-cause localization smoke: clean-baseline causal
# paths, a labeled fault schedule, and the per-class (tier, node,
# fault-kind) precision/recall/F1 report against ground truth.
localize:
	$(GO) run ./cmd/rbvrepro -scale 0.05 -run faultlocalize

# hypotheses is the hypothesis-lab gate: every hypotheses/*/FINDINGS.md
# must state its claim/seeds/result and pin the experiment cell its numbers
# came from; the tool re-runs each pinned cell (cheap smoke-scale cells)
# and fails on fingerprint drift, so findings cannot quietly go stale.
hypotheses:
	$(GO) run ./cmd/hypotheses

# verify re-runs the deterministic verification sweep (every registry
# experiment across the seed x scale x GOMAXPROCS grid) and diffs the
# canonical output fingerprints against the committed corpus. Any
# divergence fails with the experiment name and first divergent field.
verify:
	$(GO) run ./cmd/rbvrepro -verify

# golden regenerates the committed corpus from the current code. Run it
# only after an *intentional* output change, then review the .golden diff
# like any other code change.
golden:
	$(GO) run ./cmd/rbvrepro -golden

# verify-full checks the full-evaluation tier: every experiment at seed 1,
# scale 1 — the configuration the README quotes — against its own corpus
# (testdata/golden-full). A whole-tier run takes well under a minute since
# the kernel event-loop rewrite; CI runs it as a blocking job.
verify-full:
	$(GO) run ./cmd/rbvrepro -verify -grid full

golden-full:
	$(GO) run ./cmd/rbvrepro -golden -grid full

# cover writes a per-package coverage report and enforces the repo-level
# floor (the measured total at PR 6 was 87.7% of statements; the floor sits
# a point below so legitimate refactors don't trip it).
COVER_FLOOR ?= 87
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -20
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_FLOOR))}" || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# fuzz runs each native fuzz target for a short smoke budget — long enough
# to exercise the mutator, short enough for CI. Findings land in
# internal/verify/testdata/fuzz/ as regression seeds.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDTW$$' -fuzztime $(FUZZTIME) ./internal/verify/
	$(GO) test -run '^$$' -fuzz '^FuzzSignatureMatch$$' -fuzztime $(FUZZTIME) ./internal/verify/
	$(GO) test -run '^$$' -fuzz '^FuzzFingerprintStability$$' -fuzztime $(FUZZTIME) ./internal/verify/
	$(GO) test -run '^$$' -fuzz '^FuzzStreamSpec$$' -fuzztime $(FUZZTIME) ./internal/verify/
	$(GO) test -run '^$$' -fuzz '^FuzzTopologySpec$$' -fuzztime $(FUZZTIME) ./internal/verify/

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/distance/... ./internal/cluster/...
	$(GO) test -run '^$$' -bench 'BenchmarkPairwiseMatrix|BenchmarkIdentify|BenchmarkObsOverhead|BenchmarkServeSteadyState|BenchmarkFleetSteadyState' -benchtime=1x -benchmem .

# bench-json runs the full root benchmark sweep once (BenchmarkObsOverhead
# included via `-bench .`) and records it as a machine-readable perf
# snapshot named after the current commit — the BENCH_*.json trajectory
# future PRs diff against. The -obs flag additionally embeds fig1's
# observability run report (span totals, sampler overhead accounting).
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem . \
		| $(GO) run ./cmd/benchjson -obs fig1 -out BENCH_$$(git rev-parse --short HEAD).json

# bench-smoke is the benchmark-regression gate: the same sweep compared
# against the committed PR 6 snapshot with a 3x tolerance — generous enough
# that machine noise never trips it, tight enough that a lost fast path or
# accidental O(n^2) fails loudly. Sub-100µs ns/op baselines are skipped as
# noise. The baseline carries -benchmem columns, so B/op and allocs/op are
# guarded under the same run (the alloc-regression leg: allocation counts
# are deterministic, so a blown pooling fast path fails here even when wall
# time stays inside the ns/op tolerance).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem . \
		| $(GO) run ./cmd/benchjson -against BENCH_506f09d.json \
			-mem-tolerance 3 -bytes-floor 1e6 -allocs-floor 10e3 -out /dev/null
