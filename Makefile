# Smoke gate: `make check` runs what CI would — vet, build, the full test
# suite under the race detector, and a single-iteration pass over the
# distance/cluster benchmarks (including the pairwise-matrix engine's
# serial-vs-parallel equality assertion in BenchmarkPairwiseMatrix).

GO ?= go

.PHONY: check vet build test bench

check: vet build test bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/distance/... ./internal/cluster/...
	$(GO) test -run '^$$' -bench BenchmarkPairwiseMatrix -benchtime=1x .
