# Smoke gate: `make check` runs what CI would — vet, build, the full test
# suite under the race detector, and a single-iteration pass over the
# distance/cluster benchmarks (including the pairwise-matrix engine's
# serial-vs-parallel equality assertion in BenchmarkPairwiseMatrix).

GO ?= go

.PHONY: check vet build test test-dist bench bench-json faults

check: vet build test test-dist bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./... ./examples/...

test:
	$(GO) test -race ./...

# Focused race-detector pass over the interconnect robustness and fault
# injection suites (also covered by `test`; kept addressable so the
# distributed stack can be iterated on quickly).
test-dist:
	$(GO) test -race ./internal/distributed/... ./internal/fault/...

# faults is the fault-injection smoke: a tiny labeled schedule through the
# full faultanomaly pipeline — injection, retries/hedging on vs off, and
# detector precision/recall/F1 against ground truth.
faults:
	$(GO) run ./cmd/rbvrepro -scale 0.05 -run faultanomaly

bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/distance/... ./internal/cluster/...
	$(GO) test -run '^$$' -bench 'BenchmarkPairwiseMatrix|BenchmarkIdentify|BenchmarkObsOverhead' -benchtime=1x .

# bench-json runs the full root benchmark sweep once (BenchmarkObsOverhead
# included via `-bench .`) and records it as a machine-readable perf
# snapshot named after the current commit — the BENCH_*.json trajectory
# future PRs diff against. The -obs flag additionally embeds fig1's
# observability run report (span totals, sampler overhead accounting).
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem . \
		| $(GO) run ./cmd/benchjson -obs fig1 -out BENCH_$$(git rev-parse --short HEAD).json
